// Command frangicli is an interactive shell over an in-process
// Frangipani cluster: two Petal-backed file servers share one virtual
// disk, and every command can be routed to either server with the
// `on` command, making the coherence guarantees directly observable.
//
//	$ go run ./cmd/frangicli
//	ws1> mkdir /demo
//	ws1> put /demo/hello.txt hello world
//	ws1> on ws2
//	ws2> cat /demo/hello.txt
//	hello world
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"frangipani"
	fslayout "frangipani/internal/fs"
	"frangipani/internal/obs"
)

func main() {
	cluster, err := frangipani.NewCluster(frangipani.DefaultClusterConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "frangicli:", err)
		os.Exit(1)
	}
	defer cluster.Close()
	servers := map[string]*frangipani.FS{}
	for _, name := range []string{"ws1", "ws2"} {
		f, err := cluster.AddServer(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "frangicli:", err)
			os.Exit(1)
		}
		servers[name] = f
	}
	cur := "ws1"
	fmt.Println("frangipani shell — two servers (ws1, ws2) share one disk; `help` for commands")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("%s> ", cur)
		if !sc.Scan() {
			return
		}
		args := strings.Fields(sc.Text())
		if len(args) == 0 {
			continue
		}
		fs := servers[cur]
		var err error
		switch args[0] {
		case "help":
			fmt.Println(`commands:
  on <ws1|ws2>         switch the server executing commands
  ls [path]            list a directory
  mkdir|rmdir <path>   make / remove a directory
  touch|rm <path>      create / remove a file
  put <path> <text..>  write text into a file
  cat <path>           print a file
  mv <src> <dst>       rename
  ln -s <tgt> <path>   symlink
  stat <path>          show metadata
  sync                 flush this server
  stats [json|trace|slow|shards]
                       cluster metrics snapshot; 'trace' renders the
                       span tree of the last completed operation,
                       'slow' dumps recorded slow operations,
                       'shards' shows the lock shard map (epoch,
                       per-shard op counts, owners)
  watch [n]            render n windowed refreshes (default 5, 1/s):
                       per-window op rates and p99s, health verdict,
                       and the hot-lock table
  health [json]        evaluate the cluster health probes
  hotlocks [json]      top contended locks (acquire wait + revokes)
                       with the shard and lock server each maps to
  top [json]           per-principal account table: who is moving
                       bytes, issuing RPCs, and waiting on locks;
                       tag work with obs.WithPrincipal to attribute
                       it (unattributed work shows as 'unknown')
  forensics [json]     merged cross-server event timeline (flight
                       recorder); variants:
                         forensics lock <id|inode/N>   one lock's story,
                           including shard-map epochs and handoffs
                           covering its shard
                         forensics op <traceID-hex>    one operation
                         forensics last <dur>          e.g. last 2s
                       append 'json' for a machine-readable dump
  critpath [json]      critical-path profile of recent traces
                       ("where does a Sync go")
  fsck                 offline consistency check
  quit`)
		case "on":
			if len(args) == 2 && servers[args[1]] != nil {
				cur = args[1]
			} else {
				fmt.Println("usage: on ws1|ws2")
			}
		case "ls":
			path := "/"
			if len(args) > 1 {
				path = args[1]
			}
			var ents []frangipani.DirEntry
			ents, err = fs.ReadDir(path)
			for _, e := range ents {
				fmt.Printf("%-8s %s\n", e.Type, e.Name)
			}
		case "mkdir":
			err = fs.Mkdir(arg(args, 1))
		case "rmdir":
			err = fs.Rmdir(arg(args, 1))
		case "touch":
			err = fs.Create(arg(args, 1))
		case "rm":
			err = fs.Remove(arg(args, 1))
		case "mv":
			err = fs.Rename(arg(args, 1), arg(args, 2))
		case "ln":
			if len(args) == 4 && args[1] == "-s" {
				err = fs.Symlink(args[2], args[3])
			} else {
				fmt.Println("usage: ln -s <target> <path>")
			}
		case "put":
			var h *frangipani.File
			h, err = fs.OpenFile(arg(args, 1), true)
			if err == nil {
				_, err = h.WriteAt([]byte(strings.Join(args[2:], " ")+"\n"), 0)
			}
		case "cat":
			var h *frangipani.File
			h, err = fs.Open(arg(args, 1))
			if err == nil {
				var size int64
				if size, err = h.Size(); err == nil {
					buf := make([]byte, size)
					var n int
					n, err = h.ReadAt(buf, 0)
					if err == io.EOF {
						err = nil
					}
					os.Stdout.Write(buf[:n])
				}
			}
		case "stat":
			var info frangipani.Info
			info, err = fs.Stat(arg(args, 1))
			if err == nil {
				fmt.Printf("inum=%d type=%s size=%d nlink=%d\n", info.Inum, info.Type, info.Size, info.Nlink)
			}
		case "sync":
			err = fs.Sync()
		case "stats":
			reg := cluster.Obs()
			if reg == nil {
				fmt.Println("observability disabled")
				break
			}
			switch arg(args, 1) {
			case "json":
				fmt.Println(reg.Snapshot().JSON())
			case "trace":
				tr := reg.Tracer()
				if out := tr.RenderTrace(tr.LastRoot()); out != "" {
					fmt.Print(out)
				} else {
					fmt.Println("no completed trace yet")
				}
			case "slow":
				dumps := reg.Tracer().SlowDumps()
				if len(dumps) == 0 {
					fmt.Println("no slow operations recorded (set ClusterConfig.SlowOpThreshold)")
				}
				for _, d := range dumps {
					fmt.Print(d)
				}
			case "shards":
				epoch, owners := cluster.LockShardMap()
				counters := reg.Snapshot().Counters
				fmt.Printf("shard map epoch %d, %d shards across %s\n",
					epoch, len(owners), strings.Join(cluster.LockServerNames(), " "))
				fmt.Printf("  %-8s %-10s %10s\n", "shard", "owner", "ops")
				for sh, owner := range owners {
					ops := counters[fmt.Sprintf("lockservice.shard.ops#s%03d", sh)]
					if ops == 0 {
						continue
					}
					fmt.Printf("  s%03d     %-10s %10d\n", sh, owner, ops)
				}
			default:
				fmt.Print(reg.Snapshot().Text())
			}
		case "watch":
			reg := cluster.Obs()
			if reg == nil {
				fmt.Println("observability disabled")
				break
			}
			rounds := 5
			if n, convErr := strconv.Atoi(arg(args, 1)); convErr == nil && n > 0 {
				rounds = n
			}
			ring := cluster.Windows()
			for i := 0; i < rounds; i++ {
				time.Sleep(time.Second)
				win := ring.Advance()
				fmt.Printf("--- refresh %d/%d ---\n", i+1, rounds)
				fmt.Print(win.Text())
				rep := cluster.Health()
				fmt.Printf("health: %s", rep.Verdict)
				for _, p := range rep.Probes {
					if p.Status != 0 {
						fmt.Printf("  [%s %s: %s]", p.Status, p.Name, p.Detail)
					}
				}
				fmt.Println()
				if top := reg.Resources("lockservice.locks").TopK(5); len(top) > 0 {
					fmt.Print(obs.RenderResources("hot locks", top))
				}
				for _, a := range cluster.Anomalies().Observe(win) {
					fmt.Printf("ANOMALY %s: %s %.1f (baseline %.1f)\n", a.Kind, a.Metric, a.Value, a.Baseline)
				}
			}
		case "health":
			if arg(args, 1) == "json" {
				printJSON(cluster.Health())
			} else {
				fmt.Print(cluster.Health().Text())
			}
		case "hotlocks":
			reg := cluster.Obs()
			if reg == nil {
				fmt.Println("observability disabled")
				break
			}
			top := reg.Resources("lockservice.locks").TopK(10)
			if arg(args, 1) == "json" {
				type hotLock struct {
					obs.ResourceStat
					Shard int    `json:"shard"`
					Owner string `json:"owner"`
				}
				out := make([]hotLock, len(top))
				for i, st := range top {
					sh, owner := cluster.LockShardFor(st.ID)
					out[i] = hotLock{ResourceStat: st, Shard: sh, Owner: owner}
				}
				printJSON(out)
				break
			}
			if len(top) == 0 {
				fmt.Println("no lock acquisitions recorded yet")
				break
			}
			fmt.Printf("hot locks:\n  %-28s %10s %12s %8s  %-6s %s\n",
				"resource", "acquires", "wait (ms)", "revokes", "shard", "owner")
			for _, st := range top {
				name := st.Name
				if name == "" {
					name = fmt.Sprintf("%#x", st.ID)
				}
				sh, owner := cluster.LockShardFor(st.ID)
				fmt.Printf("  %-28s %10d %12.3f %8d  s%03d   %s\n",
					name, st.Acquires, float64(st.WaitNs)/1e6, st.Events, sh, owner)
			}
		case "top":
			acct := cluster.Accounts()
			if acct == nil {
				fmt.Println("accounting disabled")
				break
			}
			// Each invocation closes a rate window, so the "now"
			// column reads as activity since the previous `top`.
			acct.Advance()
			stats := acct.Snapshot()
			if arg(args, 1) == "json" {
				printJSON(stats)
			} else if len(stats) == 0 {
				fmt.Println("no attributed work yet")
			} else {
				fmt.Print(obs.RenderAccounts(stats))
			}
		case "forensics":
			if cluster.Obs() == nil {
				fmt.Println("observability disabled")
				break
			}
			err = forensics(cluster, args[1:])
		case "critpath":
			reg := cluster.Obs()
			if reg == nil {
				fmt.Println("observability disabled")
				break
			}
			cp := obs.NewCritPath()
			cp.AddTracer(reg.Tracer(), 0)
			if arg(args, 1) == "json" {
				printJSON(critJSON(cp))
				break
			}
			if out := cp.Report(); out != "" {
				fmt.Print(out)
			} else {
				fmt.Println("no completed traces yet")
			}
		case "fsck":
			for _, f := range servers {
				_ = f.Sync()
			}
			var rep *frangipani.Report
			rep, err = cluster.Fsck()
			if err == nil {
				if rep.OK() {
					fmt.Printf("clean (%d inodes, %d blocks)\n", rep.Inodes, rep.Blocks)
				}
				for _, p := range rep.Problems {
					fmt.Printf("PROBLEM [%s] %s\n", p.Kind, p.Msg)
				}
			}
		case "quit", "exit":
			return
		default:
			fmt.Println("unknown command; `help`")
		}
		if err != nil {
			fmt.Println("error:", err)
		}
	}
}

func arg(args []string, i int) string {
	if i < len(args) {
		return args[i]
	}
	return ""
}

// critRoot is the machine-readable shape of one critpath section.
type critRoot struct {
	Op       string          `json:"op"`
	Count    int64           `json:"count"`
	MeanNs   int64           `json:"mean_ns"`
	Coverage float64         `json:"coverage"`
	Profile  []obs.PathEntry `json:"profile"`
}

// critJSON flattens a critical-path profile for `critpath json`.
func critJSON(cp *obs.CritPath) []critRoot {
	out := []critRoot{}
	for _, op := range cp.RootOps() {
		out = append(out, critRoot{
			Op:       op,
			Count:    cp.Count(op),
			MeanNs:   cp.MeanNs(op),
			Coverage: cp.Coverage(op),
			Profile:  cp.Profile(op),
		})
	}
	return out
}

func printJSON(v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(string(b))
}

// forensics implements the `forensics` shell command: it merges every
// server's flight-recorder journal into one causally-ordered timeline,
// optionally narrowed to a lock, a trace, or a recent window. A lock's
// story also carries the shard-map epoch changes, handoffs, and
// wrong-shard nacks that decided where the lock was served, so shard
// ownership over time is visible alongside the grants and revokes.
func forensics(cluster *frangipani.Cluster, args []string) error {
	var f obs.Filter
	var traceOut string
	var lockID uint64
	asJSON := false
	for len(args) > 0 {
		switch args[0] {
		case "json":
			asJSON = true
			args = args[1:]
		case "lock":
			if len(args) < 2 {
				return fmt.Errorf("usage: forensics lock <id|inode/N|bitmap-seg/N|log-slot/N>")
			}
			id, ok := fslayout.ParseLockName(args[1])
			if !ok {
				return fmt.Errorf("cannot parse lock %q", args[1])
			}
			// Filter only by layer here: shardmap/handoff events are
			// keyed to shards, not locks, and would be dropped by a
			// Key filter. lockEvents narrows per event below.
			lockID, f.Layer = id, "lockservice"
			args = args[2:]
		case "op":
			if len(args) < 2 {
				return fmt.Errorf("usage: forensics op <traceID-hex>")
			}
			id, err := strconv.ParseUint(strings.TrimPrefix(args[1], "0x"), 16, 64)
			if err != nil {
				return fmt.Errorf("cannot parse trace id %q", args[1])
			}
			f.Trace = id
			traceOut = cluster.Obs().Tracer().RenderTrace(id)
			args = args[2:]
		case "last":
			if len(args) < 2 {
				return fmt.Errorf("usage: forensics last <duration>")
			}
			d, err := time.ParseDuration(args[1])
			if err != nil {
				return err
			}
			f.Since = cluster.NowNs() - int64(d)
			args = args[2:]
		default:
			return fmt.Errorf("unknown forensics argument %q", args[0])
		}
	}
	events := cluster.Timeline(f)
	if lockID != 0 {
		events = lockEvents(events, lockID)
	}
	if asJSON {
		dump := cluster.Forensics("cli request")
		dump.Events = events
		fmt.Println(dump.JSON())
		return nil
	}
	if traceOut != "" {
		fmt.Print(traceOut)
	}
	fmt.Print(obs.RenderTimeline(events, cluster.EntityNamer()))
	return nil
}

// lockEvents keeps the events that tell one lock's story: its own
// grants/revokes/releases plus every shard-map epoch change, handoff,
// and wrong-shard nack — the routing history that determines which
// server was serving the lock at each moment.
func lockEvents(events []obs.Event, lockID uint64) []obs.Event {
	kept := events[:0]
	for _, e := range events {
		if e.Key == lockID || e.Op == "shardmap" || e.Op == "handoff" || e.Op == "shard" {
			kept = append(kept, e)
		}
	}
	return kept
}
