// Command frangibench regenerates the tables and figures of the
// Frangipani paper's evaluation (§9) on the simulated testbed.
//
// Usage:
//
//	frangibench                 # run every experiment
//	frangibench -exp table1     # one experiment
//	frangibench -quick          # smaller workloads (smoke run)
//	frangibench -list           # list experiment names
//
// See EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"frangipani"
	"frangipani/internal/bench"
	"frangipani/internal/obs"
)

var names = []string{
	"table1", "table2", "table3",
	"fig5", "fig6", "fig7", "fig7-norepl", "fig8", "fig9",
	"wshare", "smallreads", "ablation-synclog", "writeback-pipeline",
	"read-scaling", "obs-overhead", "obs-smoke", "contention-profile",
	"codec-mux", "lock-scaling", "scale-sweep", "forensics-smoke",
	"noisy-neighbor-obs",
}

func main() {
	var (
		exp         = flag.String("exp", "", "experiment to run (default: all)")
		quick       = flag.Bool("quick", false, "smaller workloads")
		list        = flag.Bool("list", false, "list experiments and exit")
		compression = flag.Float64("compression", 1, "simulated seconds per real second")
		machines    = flag.Int("machines", 6, "maximum Frangipani machines in scaling sweeps")
		petals      = flag.Int("petals", 7, "number of Petal servers")
		snapshot    = flag.String("snapshot", "", "run a small workload and dump the metrics registry (text|json)")
		jsonOut     = flag.String("json", "", "run the small workload and write a machine-readable report to this path")
		out         = flag.String("out", "", "append a perf-trajectory record (experiment tables, metrics, git SHA) to this path")
	)
	flag.Parse()

	if *list {
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	if *snapshot != "" {
		if err := dumpSnapshot(*snapshot); err != nil {
			fmt.Fprintln(os.Stderr, "frangibench:", err)
			os.Exit(1)
		}
		return
	}

	if *jsonOut != "" {
		if err := writeJSONReport(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "frangibench:", err)
			os.Exit(1)
		}
		return
	}

	o := bench.DefaultOptions()
	o.Quick = *quick
	o.Compression = *compression
	o.MaxMachines = *machines
	o.PetalServers = *petals

	if *exp != "" {
		tb, err := o.ByName(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "frangibench:", err)
			os.Exit(1)
		}
		fmt.Print(tb.Render())
		if *out != "" {
			if err := writeTrajectory(*out, *exp, tb, nil); err != nil {
				fmt.Fprintln(os.Stderr, "frangibench:", err)
				os.Exit(1)
			}
		}
		return
	}

	if *out != "" {
		// Bare -out: persist the small-workload report as this
		// build's point on the perf trajectory.
		rep, err := collectJSONReport()
		if err != nil {
			fmt.Fprintln(os.Stderr, "frangibench:", err)
			os.Exit(1)
		}
		if err := writeTrajectory(*out, "small-workload", nil, rep); err != nil {
			fmt.Fprintln(os.Stderr, "frangibench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
		return
	}
	// Run each experiment in a fresh child process: at clock
	// compression 1, heap retained from earlier experiments would
	// inflate later wall-derived timings through GC pauses.
	self, err := os.Executable()
	if err != nil {
		self = ""
	}
	for _, n := range names {
		if self != "" {
			cmd := exec.Command(self,
				"-exp", n,
				fmt.Sprintf("-quick=%v", *quick),
				fmt.Sprintf("-compression=%v", *compression),
				fmt.Sprintf("-machines=%d", *machines),
				fmt.Sprintf("-petals=%d", *petals))
			cmd.Stdout = os.Stdout
			cmd.Stderr = os.Stderr
			if err := cmd.Run(); err != nil {
				fmt.Fprintln(os.Stderr, "frangibench:", n, err)
				os.Exit(1)
			}
		} else {
			tb, err := o.ByName(n)
			if err != nil {
				fmt.Fprintln(os.Stderr, "frangibench:", n, err)
				os.Exit(1)
			}
			fmt.Print(tb.Render())
		}
		fmt.Println()
	}
}

// benchReport is the machine-readable output of -json: per-operation
// latency summaries, RPC/request counts, a critical-path profile of
// the traced operations, and the full registry snapshot for anything
// a consumer wants that the curated sections omit.
type benchReport struct {
	Ops        map[string]obs.HistStat `json:"op_latencies"`
	RPCs       map[string]int64        `json:"rpc_counts"`
	Principals []obs.AccountStat       `json:"principals,omitempty"`
	CritPath   []critEntry             `json:"critical_path,omitempty"`
	Snapshot   obs.Snapshot            `json:"snapshot"`
}

type critEntry struct {
	RootOp   string          `json:"root_op"`
	Count    int64           `json:"count"`
	MeanNs   int64           `json:"mean_ns"`
	Coverage float64         `json:"coverage"`
	Layers   []obs.PathEntry `json:"layers"`
}

// writeJSONReport runs the same small workload as -snapshot and
// writes a benchReport to path.
func writeJSONReport(path string) error {
	rep, err := collectJSONReport()
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// collectJSONReport runs the small workload and gathers a benchReport.
func collectJSONReport() (*benchReport, error) {
	c, err := frangipani.NewCluster(frangipani.DefaultClusterConfig())
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := smallWorkload(c); err != nil {
		return nil, err
	}
	reg := c.Obs()
	snap := reg.Snapshot()
	rep := benchReport{
		Ops:        map[string]obs.HistStat{},
		RPCs:       map[string]int64{},
		Principals: snap.Accounts,
		Snapshot:   snap,
	}
	for name, h := range snap.Histograms {
		if strings.HasPrefix(name, "fs.") && strings.Contains(name, ".latency") {
			rep.Ops[name] = h
		}
	}
	for name, v := range snap.Counters {
		if strings.Contains(name, ".rpcs#") || strings.Contains(name, ".requests#") {
			rep.RPCs[name] = v
		}
	}
	cp := obs.NewCritPath()
	cp.AddTracer(reg.Tracer(), 0)
	for _, root := range cp.RootOps() {
		rep.CritPath = append(rep.CritPath, critEntry{
			RootOp:   root,
			Count:    cp.Count(root),
			MeanNs:   cp.MeanNs(root),
			Coverage: cp.Coverage(root),
			Layers:   cp.Profile(root),
		})
	}
	return &rep, nil
}

// trajectorySchema versions the -out record layout so downstream
// trend tooling can evolve without guessing at shapes.
const trajectorySchema = "frangipani-bench/v1"

// trajectoryRecord is one persisted point on the perf trajectory:
// which experiment ran, on which commit, when, and its metrics.
type trajectoryRecord struct {
	Schema     string `json:"schema"`
	Experiment string `json:"experiment"`
	GitSHA     string `json:"git_sha"`
	TakenAt    string `json:"taken_at"`
	// GoMaxProcs and NumCPU identify the host parallelism a record
	// was measured under: scaling sweeps dilate the simulated clock,
	// but host saturation can still skew absolute numbers, so trend
	// tooling must compare like with like.
	GoMaxProcs int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Table      *bench.Table `json:"table,omitempty"`
	Report     *benchReport `json:"report,omitempty"`
}

// writeTrajectory writes one trajectoryRecord to path. Exactly one of
// tb / rep is non-nil depending on whether -exp was given.
func writeTrajectory(path, experiment string, tb *bench.Table, rep *benchReport) error {
	rec := trajectoryRecord{
		Schema:     trajectorySchema,
		Experiment: experiment,
		GitSHA:     gitSHA(),
		TakenAt:    time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Table:      tb,
		Report:     rep,
	}
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// gitSHA identifies the commit a trajectory record was measured on.
// CI environments expose it even without a .git checkout.
func gitSHA() string {
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		if s := strings.TrimSpace(string(out)); s != "" {
			return s
		}
	}
	if s := os.Getenv("GITHUB_SHA"); s != "" {
		return s
	}
	return "unknown"
}

// smallWorkload exercises every layer once: metadata ops, a 64 KB
// write, a cross-server read (coherence traffic), and syncs.
func smallWorkload(c *frangipani.Cluster) error {
	f, err := c.AddServer("ws1")
	if err != nil {
		return err
	}
	f2, err := c.AddServer("ws2")
	if err != nil {
		return err
	}
	if err := f.Mkdir("/demo"); err != nil {
		return err
	}
	h, err := f.OpenFile("/demo/a", true)
	if err != nil {
		return err
	}
	if _, err := h.WriteAt(make([]byte, 64<<10), 0); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	h2, err := f2.Open("/demo/a")
	if err != nil {
		return err
	}
	buf := make([]byte, 64<<10)
	if _, err := h2.ReadAt(buf, 0); err != nil {
		return err
	}
	return f2.Sync()
}

// dumpSnapshot runs a tiny workload on a default cluster and prints
// the full metrics registry plus the span tree of the final Sync —
// a quick way to see what the observability layer records.
func dumpSnapshot(format string) error {
	c, err := frangipani.NewCluster(frangipani.DefaultClusterConfig())
	if err != nil {
		return err
	}
	defer c.Close()
	f, err := c.AddServer("ws1")
	if err != nil {
		return err
	}
	if err := f.Mkdir("/demo"); err != nil {
		return err
	}
	h, err := f.OpenFile("/demo/a", true)
	if err != nil {
		return err
	}
	if _, err := h.WriteAt(make([]byte, 64<<10), 0); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	reg := c.Obs()
	if format == "json" {
		fmt.Println(reg.Snapshot().JSON())
		return nil
	}
	fmt.Print(reg.Snapshot().Text())
	tr := reg.Tracer()
	fmt.Println()
	fmt.Print(tr.RenderTrace(tr.LastRoot()))
	return nil
}
