// Command frangibench regenerates the tables and figures of the
// Frangipani paper's evaluation (§9) on the simulated testbed.
//
// Usage:
//
//	frangibench                 # run every experiment
//	frangibench -exp table1     # one experiment
//	frangibench -quick          # smaller workloads (smoke run)
//	frangibench -list           # list experiment names
//
// See EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"frangipani/internal/bench"
)

var names = []string{
	"table1", "table2", "table3",
	"fig5", "fig6", "fig7", "fig7-norepl", "fig8", "fig9",
	"wshare", "smallreads", "ablation-synclog", "writeback-pipeline",
}

func main() {
	var (
		exp         = flag.String("exp", "", "experiment to run (default: all)")
		quick       = flag.Bool("quick", false, "smaller workloads")
		list        = flag.Bool("list", false, "list experiments and exit")
		compression = flag.Float64("compression", 1, "simulated seconds per real second")
		machines    = flag.Int("machines", 6, "maximum Frangipani machines in scaling sweeps")
		petals      = flag.Int("petals", 7, "number of Petal servers")
	)
	flag.Parse()

	if *list {
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	o := bench.DefaultOptions()
	o.Quick = *quick
	o.Compression = *compression
	o.MaxMachines = *machines
	o.PetalServers = *petals

	if *exp != "" {
		tb, err := o.ByName(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "frangibench:", err)
			os.Exit(1)
		}
		fmt.Print(tb.Render())
		return
	}
	// Run each experiment in a fresh child process: at clock
	// compression 1, heap retained from earlier experiments would
	// inflate later wall-derived timings through GC pauses.
	self, err := os.Executable()
	if err != nil {
		self = ""
	}
	for _, n := range names {
		if self != "" {
			cmd := exec.Command(self,
				"-exp", n,
				fmt.Sprintf("-quick=%v", *quick),
				fmt.Sprintf("-compression=%v", *compression),
				fmt.Sprintf("-machines=%d", *machines),
				fmt.Sprintf("-petals=%d", *petals))
			cmd.Stdout = os.Stdout
			cmd.Stderr = os.Stderr
			if err := cmd.Run(); err != nil {
				fmt.Fprintln(os.Stderr, "frangibench:", n, err)
				os.Exit(1)
			}
		} else {
			tb, err := o.ByName(n)
			if err != nil {
				fmt.Fprintln(os.Stderr, "frangibench:", n, err)
				os.Exit(1)
			}
			fmt.Print(tb.Render())
		}
		fmt.Println()
	}
}
