// Command frangibench regenerates the tables and figures of the
// Frangipani paper's evaluation (§9) on the simulated testbed.
//
// Usage:
//
//	frangibench                 # run every experiment
//	frangibench -exp table1     # one experiment
//	frangibench -quick          # smaller workloads (smoke run)
//	frangibench -list           # list experiment names
//
// See EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"frangipani"
	"frangipani/internal/bench"
)

var names = []string{
	"table1", "table2", "table3",
	"fig5", "fig6", "fig7", "fig7-norepl", "fig8", "fig9",
	"wshare", "smallreads", "ablation-synclog", "writeback-pipeline",
	"obs-overhead", "obs-smoke",
}

func main() {
	var (
		exp         = flag.String("exp", "", "experiment to run (default: all)")
		quick       = flag.Bool("quick", false, "smaller workloads")
		list        = flag.Bool("list", false, "list experiments and exit")
		compression = flag.Float64("compression", 1, "simulated seconds per real second")
		machines    = flag.Int("machines", 6, "maximum Frangipani machines in scaling sweeps")
		petals      = flag.Int("petals", 7, "number of Petal servers")
		snapshot    = flag.String("snapshot", "", "run a small workload and dump the metrics registry (text|json)")
	)
	flag.Parse()

	if *list {
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	if *snapshot != "" {
		if err := dumpSnapshot(*snapshot); err != nil {
			fmt.Fprintln(os.Stderr, "frangibench:", err)
			os.Exit(1)
		}
		return
	}

	o := bench.DefaultOptions()
	o.Quick = *quick
	o.Compression = *compression
	o.MaxMachines = *machines
	o.PetalServers = *petals

	if *exp != "" {
		tb, err := o.ByName(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "frangibench:", err)
			os.Exit(1)
		}
		fmt.Print(tb.Render())
		return
	}
	// Run each experiment in a fresh child process: at clock
	// compression 1, heap retained from earlier experiments would
	// inflate later wall-derived timings through GC pauses.
	self, err := os.Executable()
	if err != nil {
		self = ""
	}
	for _, n := range names {
		if self != "" {
			cmd := exec.Command(self,
				"-exp", n,
				fmt.Sprintf("-quick=%v", *quick),
				fmt.Sprintf("-compression=%v", *compression),
				fmt.Sprintf("-machines=%d", *machines),
				fmt.Sprintf("-petals=%d", *petals))
			cmd.Stdout = os.Stdout
			cmd.Stderr = os.Stderr
			if err := cmd.Run(); err != nil {
				fmt.Fprintln(os.Stderr, "frangibench:", n, err)
				os.Exit(1)
			}
		} else {
			tb, err := o.ByName(n)
			if err != nil {
				fmt.Fprintln(os.Stderr, "frangibench:", n, err)
				os.Exit(1)
			}
			fmt.Print(tb.Render())
		}
		fmt.Println()
	}
}

// dumpSnapshot runs a tiny workload on a default cluster and prints
// the full metrics registry plus the span tree of the final Sync —
// a quick way to see what the observability layer records.
func dumpSnapshot(format string) error {
	c, err := frangipani.NewCluster(frangipani.DefaultClusterConfig())
	if err != nil {
		return err
	}
	defer c.Close()
	f, err := c.AddServer("ws1")
	if err != nil {
		return err
	}
	if err := f.Mkdir("/demo"); err != nil {
		return err
	}
	h, err := f.OpenFile("/demo/a", true)
	if err != nil {
		return err
	}
	if _, err := h.WriteAt(make([]byte, 64<<10), 0); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	reg := c.Obs()
	if format == "json" {
		fmt.Println(reg.Snapshot().JSON())
		return nil
	}
	fmt.Print(reg.Snapshot().Text())
	tr := reg.Tracer()
	fmt.Println()
	fmt.Print(tr.RenderTrace(tr.LastRoot()))
	return nil
}
