package frangipani_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"frangipani/internal/obs"
)

// TestClusterHealthAndWindows drives a two-server workload and checks
// the live-health surface end to end: the probe verdict on a healthy
// cluster, windowed rates over the workload interval (what frangicli's
// watch renders), and the hot-lock table naming a real lock.
func TestClusterHealthAndWindows(t *testing.T) {
	c := newTestCluster(t)
	ring := c.Windows() // baseline before the workload
	ws1, err := c.AddServer("ws1")
	if err != nil {
		t.Fatal(err)
	}
	ws2, err := c.AddServer("ws2")
	if err != nil {
		t.Fatal(err)
	}
	if err := ws1.Mkdir("/h"); err != nil {
		t.Fatal(err)
	}
	h, err := ws1.OpenFile("/h/a", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(make([]byte, 16<<10), 0); err != nil {
		t.Fatal(err)
	}
	if err := ws1.Sync(); err != nil {
		t.Fatal(err)
	}
	// ws2 touches the same file so the inode lock moves between
	// servers and the contention table sees a revoke.
	h2, err := ws2.Open("/h/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.ReadAt(make([]byte, 16<<10), 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}

	rep := c.Health()
	if rep.Verdict != obs.StatusOK {
		t.Fatalf("healthy cluster verdict = %v:\n%s", rep.Verdict, rep.Text())
	}
	probes := map[string]bool{}
	for _, p := range rep.Probes {
		probes[p.Name] = true
	}
	for _, want := range []string{"lease/ws1", "wal/ws1", "cache/ws1", "lease/ws2"} {
		if !probes[want] {
			t.Fatalf("missing probe %q in %v", want, probes)
		}
	}
	found := false
	for name := range probes {
		if strings.HasPrefix(name, "petal/") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no petal probes in %v", probes)
	}

	win := ring.Advance()
	if win.Seconds() <= 0 {
		t.Fatal("window has zero simulated length")
	}
	if win.Rates["fs.ops.count#ws1"] <= 0 {
		t.Fatalf("windowed op rate is zero: %v", win.Rates)
	}
	if win.Text() == "" {
		t.Fatal("window renders empty")
	}

	// The hot-lock table must name locks via the fs decoder.
	top := c.Obs().Resources("lockservice.locks").TopK(5)
	if len(top) == 0 {
		t.Fatal("hot-lock table empty after contended workload")
	}
	named := false
	for _, st := range top {
		if strings.HasPrefix(st.Name, "inode/") || strings.HasPrefix(st.Name, "bitmap-seg/") ||
			strings.HasPrefix(st.Name, "log-slot/") {
			named = true
		}
	}
	if !named {
		t.Fatalf("no decoded lock names in %+v", top)
	}
}

// TestClusterServeMetrics exercises the opt-in HTTP endpoint against
// a live cluster: Prometheus text on /metrics, JSON on /snapshot.json,
// and the health verdict on /health.
func TestClusterServeMetrics(t *testing.T) {
	c := newTestCluster(t)
	f, err := c.AddServer("ws1")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Mkdir("/m"); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	ms, err := c.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + ms.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}
	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "# TYPE frangipani_fs_ops_count_total counter") {
		t.Fatalf("/metrics code %d body:\n%.400s", code, body)
	}
	code, body = get("/snapshot.json")
	var snap obs.Snapshot
	if code != http.StatusOK || json.Unmarshal([]byte(body), &snap) != nil {
		t.Fatalf("/snapshot.json code %d, body %.200s", code, body)
	}
	if snap.Counters["fs.ops.count#ws1"] == 0 {
		t.Fatal("snapshot shows no ops")
	}
	code, body = get("/health")
	var hrep obs.HealthReport
	if code != http.StatusOK || json.Unmarshal([]byte(body), &hrep) != nil {
		t.Fatalf("/health code %d, body %.200s", code, body)
	}
	if hrep.Verdict != obs.StatusOK || len(hrep.Probes) == 0 {
		t.Fatalf("health report %+v", hrep)
	}
	// Replacing the endpoint closes the old listener.
	ms2, err := c.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + ms.Addr() + "/health"); err == nil {
		t.Fatal("old endpoint still serving after replacement")
	}
	if code, _ := func() (int, string) {
		resp, err := http.Get("http://" + ms2.Addr() + "/health")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode, ""
	}(); code != http.StatusOK {
		t.Fatalf("replacement endpoint code %d", code)
	}
	// Cluster.Close (via t.Cleanup) shuts the endpoint down.
}
