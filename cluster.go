// Package frangipani is the public entry point of this Frangipani
// reproduction (Thekkath, Mann & Lee, SOSP 1997): a scalable
// distributed file system built as a thin layer over the Petal
// distributed virtual disk, with coherence provided by a distributed
// lock service.
//
// A Cluster assembles the full stack in one process on a simulated
// network: Petal storage servers (each with simulated disks and
// optional NVRAM), lock servers, an initialized shared virtual disk,
// and any number of interchangeable Frangipani file servers. Servers
// can be added at runtime with AddServer — the paper's "bricks that
// can be stacked incrementally to build as large a file system as
// needed".
//
//	cluster, _ := frangipani.NewCluster(frangipani.DefaultClusterConfig())
//	defer cluster.Close()
//	ws1, _ := cluster.AddServer("ws1")
//	ws2, _ := cluster.AddServer("ws2")
//	_ = ws1.Mkdir("/shared")
//	// ws2 sees /shared immediately: all servers serve the same files.
package frangipani

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"frangipani/internal/fs"
	"frangipani/internal/lockservice"
	"frangipani/internal/obs"
	"frangipani/internal/petal"
	"frangipani/internal/sim"
)

// Re-exported types so callers rarely need the internal packages.
type (
	// FS is one Frangipani file server.
	FS = fs.FS
	// File is an open file handle.
	File = fs.File
	// Config tunes one file server.
	Config = fs.Config
	// Info is Stat output.
	Info = fs.Info
	// DirEntry is one directory entry.
	DirEntry = fs.DirEntry
	// VDiskID names a Petal virtual disk.
	VDiskID = petal.VDiskID
	// Report is the output of the consistency checker.
	Report = fs.Report
)

// Re-exported helpers.
var (
	// DefaultFSConfig returns per-server defaults.
	DefaultFSConfig = fs.DefaultConfig
	// Check verifies a quiesced or snapshotted file system.
	Check = fs.Check
	// Restore copies a snapshot to a new virtual disk and replays its
	// logs.
	Restore = fs.Restore
	// Mount attaches a Frangipani server to an arbitrary virtual disk
	// (Cluster.AddServer covers the common case on the shared disk).
	Mount = fs.Mount
	// Mkfs initializes a Frangipani file system on a virtual disk.
	Mkfs = fs.Mkfs
)

// ClusterConfig sizes a Cluster.
type ClusterConfig struct {
	// PetalServers and LockServers set the service sizes (the paper's
	// testbed ran 7 Petal servers; lock servers can share machines).
	PetalServers int
	LockServers  int
	// LockShards overrides the number of lock-table shards hashed
	// across the lock servers (0 = the lock service default).
	LockShards int
	// DisksPerServer and DiskCapacity size each Petal server's local
	// storage (the paper: 9 RZ29 disks per server).
	DisksPerServer int
	DiskCapacity   int64
	// NVRAM, if > 0, fronts every Petal disk with a PrestoServe-like
	// write buffer of this many bytes.
	NVRAM int
	// Compression is the simulated-to-real time ratio; Seed feeds the
	// deterministic RNG.
	Compression float64
	Seed        int64
	// HeartbeatEvery / SuspectAfter tune failure detection.
	HeartbeatEvery time.Duration
	SuspectAfter   time.Duration
	// FSConfig is the template for servers mounted via AddServer.
	FSConfig Config
	// VDisk names the shared virtual disk.
	VDisk VDiskID
	// GuardWrites enables the §6 lease-expiration write guard at the
	// Petal servers.
	GuardWrites bool
	// NoReplicate disables Petal write replication (a benchmark
	// ablation knob; unsafe under failures).
	NoReplicate bool
	// NoObs disables the cluster-wide metrics registry and tracer (an
	// ablation knob for measuring instrumentation overhead): only the
	// always-on standalone counters remain.
	NoObs bool
	// NoAccounting disables per-principal resource accounting while
	// keeping the rest of observability (the ablation knob for
	// measuring the accounting layer's own overhead). Components wire
	// their account-table pointer at construction, so this only takes
	// effect for clusters built with it set.
	NoAccounting bool
	// JournalCap sizes each server's flight-recorder ring.
	// DefaultClusterConfig sets it to obs.DefaultJournalCap;
	// non-positive values are rejected by NewCluster.
	JournalCap int
	// SlowOpThreshold, if > 0, makes the tracer keep a rendered span
	// tree for every root operation at least this slow (simulated
	// time); retrieve them with Obs().Tracer().SlowDumps().
	SlowOpThreshold time.Duration
}

// DefaultClusterConfig mirrors a small version of the paper's
// testbed: 3 Petal servers with 3 disks each, 3 lock servers.
func DefaultClusterConfig() ClusterConfig {
	fscfg := fs.DefaultConfig()
	fscfg.Lock.HeartbeatEvery = 2 * time.Second
	fscfg.Lock.SuspectAfter = 10 * time.Second
	return ClusterConfig{
		PetalServers:   3,
		LockServers:    3,
		DisksPerServer: 3,
		DiskCapacity:   256 << 20,
		Compression:    100,
		Seed:           1,
		HeartbeatEvery: 2 * time.Second,
		SuspectAfter:   10 * time.Second,
		FSConfig:       fscfg,
		VDisk:          "fs0",
		JournalCap:     obs.DefaultJournalCap,
	}
}

// Cluster is a fully assembled Frangipani installation.
type Cluster struct {
	World  *sim.World
	Petals []*petal.Server
	Locks  []*lockservice.Server
	cfg    ClusterConfig
	lay    fs.Layout

	petalNames []string
	lockNames  []string

	// mu guards servers and clients: Health() and the metrics
	// endpoint read them from other goroutines.
	mu      sync.Mutex
	servers map[string]*FS
	clients []*petal.Client

	winOnce sync.Once
	windows *obs.WindowRing

	anomOnce sync.Once
	anoms    *obs.AnomalyWatcher

	// healthMu guards the probe-transition memory behind health-crit
	// journaling and dump-on-failure.
	healthMu     sync.Mutex
	lastProbe    map[string]obs.ProbeStatus
	critDumpPath string
	critDumped   bool

	metrics *obs.MetricsServer
}

// NewCluster builds the stack and initializes the shared file
// system.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.PetalServers < 1 || cfg.LockServers < 1 {
		return nil, fmt.Errorf("frangipani: need at least one petal and one lock server")
	}
	if cfg.JournalCap <= 0 {
		return nil, fmt.Errorf("frangipani: JournalCap must be positive (got %d)", cfg.JournalCap)
	}
	w := sim.NewWorld(cfg.Compression, cfg.Seed)
	if cfg.NoObs {
		w.Obs = nil
	} else {
		// Registry knobs must be set before any server is built:
		// components capture their journal and account-table pointers
		// once at construction.
		if cfg.SlowOpThreshold > 0 {
			w.Obs.Tracer().SetSlowThreshold(cfg.SlowOpThreshold)
		}
		w.Obs.SetJournalCap(cfg.JournalCap)
		w.Obs.SetAccounting(!cfg.NoAccounting)
	}
	c := &Cluster{
		World:   w,
		cfg:     cfg,
		lay:     fs.DefaultLayout(),
		servers: make(map[string]*FS),
	}
	pcfg := petal.DefaultServerConfig(cfg.DiskCapacity)
	pcfg.NumDisks = cfg.DisksPerServer
	pcfg.NVRAM = cfg.NVRAM
	pcfg.HeartbeatEvery = cfg.HeartbeatEvery
	pcfg.SuspectAfter = cfg.SuspectAfter
	if cfg.GuardWrites {
		pcfg.WriteGuard = func(req petal.WriteReq, now int64) bool {
			return req.ExpireAt == 0 || req.ExpireAt > now
		}
	}
	pcfg.NoReplicate = cfg.NoReplicate
	for i := 0; i < cfg.PetalServers; i++ {
		c.petalNames = append(c.petalNames, fmt.Sprintf("petal%d", i))
	}
	for _, n := range c.petalNames {
		c.Petals = append(c.Petals, petal.NewServer(w, n, c.petalNames, pcfg))
	}
	lcfg := cfg.FSConfig.Lock
	if cfg.LockShards > 0 {
		lcfg.Shards = cfg.LockShards
	}
	for i := 0; i < cfg.LockServers; i++ {
		c.lockNames = append(c.lockNames, fmt.Sprintf("lock%d", i))
	}
	for _, n := range c.lockNames {
		c.Locks = append(c.Locks, lockservice.NewServer(w, n, c.lockNames, lcfg))
	}
	admin := c.Client("admin")
	if err := admin.CreateVDisk(cfg.VDisk); err != nil {
		c.Close()
		return nil, err
	}
	if err := fs.Mkfs(admin, cfg.VDisk, c.lay); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Layout exposes the on-disk layout in use.
func (c *Cluster) Layout() fs.Layout { return c.lay }

// Obs returns the cluster-wide metrics registry and tracer (nil when
// the cluster was built with NoObs). Every layer of every machine in
// the cluster records into it under "layer.op.metric#instance" names;
// Obs().Snapshot() captures the lot.
func (c *Cluster) Obs() *obs.Registry { return c.World.Obs }

// LockServerNames returns the lock service membership.
func (c *Cluster) LockServerNames() []string {
	return append([]string(nil), c.lockNames...)
}

// LockShardMap returns the current epoch of the Paxos-decided shard
// map and the owner of each lock-table shard.
func (c *Cluster) LockShardMap() (epoch int64, owners []string) {
	st := c.Locks[0].State()
	return st.Epoch, append([]string(nil), st.Assignment...)
}

// LockShardFor reports which shard a lock ID hashes to and which lock
// server currently serves that shard.
func (c *Cluster) LockShardFor(lock uint64) (shard int, owner string) {
	st := c.Locks[0].State()
	shard = lockservice.ShardOf(lock, st.Shards)
	return shard, st.Assignment[shard]
}

// PetalServerNames returns the Petal membership.
func (c *Cluster) PetalServerNames() []string {
	return append([]string(nil), c.petalNames...)
}

// Client returns a Petal device driver for the named machine.
func (c *Cluster) Client(machine string) *petal.Client {
	pc := petal.NewClient(c.World, machine, c.petalNames)
	if c.cfg.NoReplicate {
		// With single-copy writes, the backup replica holds nothing;
		// balanced reads would see holes. Route reads primary-only.
		pc.SetReadBalance(false)
	}
	c.mu.Lock()
	c.clients = append(c.clients, pc)
	c.mu.Unlock()
	return pc
}

// AddServer mounts a new Frangipani server on the shared disk — the
// paper's transparent server addition (§7): the new machine needs
// only the virtual disk name and the lock service addresses.
func (c *Cluster) AddServer(machine string) (*FS, error) {
	return c.AddServerWithConfig(machine, c.cfg.FSConfig)
}

// AddServerWithConfig mounts a server with a custom configuration.
func (c *Cluster) AddServerWithConfig(machine string, fscfg Config) (*FS, error) {
	c.mu.Lock()
	_, dup := c.servers[machine]
	c.mu.Unlock()
	if dup {
		return nil, fmt.Errorf("frangipani: machine %q already has a server", machine)
	}
	f, err := fs.Mount(c.World, machine, c.Client(machine), c.cfg.VDisk, c.lockNames, c.lay, fscfg)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.servers[machine] = f
	c.mu.Unlock()
	return f, nil
}

// RemoveServer cleanly unmounts a server ("removing a Frangipani
// server is even easier", §7).
func (c *Cluster) RemoveServer(machine string) error {
	c.mu.Lock()
	f, ok := c.servers[machine]
	delete(c.servers, machine)
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("frangipani: no server on %q", machine)
	}
	return f.Unmount()
}

// Server returns the file server mounted on a machine.
func (c *Cluster) Server(machine string) *FS {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.servers[machine]
}

// fileServers returns a stable-ordered copy of the mounted servers.
func (c *Cluster) fileServers() (names []string, fss []*FS) {
	c.mu.Lock()
	for name := range c.servers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fss = append(fss, c.servers[name])
	}
	c.mu.Unlock()
	return names, fss
}

// Windows returns the cluster's windowed-metrics ring (capacity 64),
// created on first use. Call its Advance at whatever cadence the
// caller wants windows at; frangicli's watch mode does this once per
// refresh.
func (c *Cluster) Windows() *obs.WindowRing {
	c.winOnce.Do(func() {
		c.windows = obs.NewWindowRing(c.Obs(), 64)
	})
	return c.windows
}

// Health evaluates the cluster's health probes and rolls them into a
// single verdict:
//
//   - lease: a server's lock-service lease is expiry-imminent (warn
//     inside 25% of the lease duration, crit when expired/poisoned);
//   - wal: a server has a write backlog but has not completed a
//     flush for over a minute of simulated time (stall);
//   - cache: a server's data or metadata pool is nearly all dirty
//     (write-back cannot keep up; warn at 75%, crit at 90%);
//   - petal: a Petal server's partners have missed replicated writes
//     that anti-entropy has not yet repaired (replica lag).
func (c *Cluster) Health() obs.HealthReport {
	h := obs.NewHealth()
	now := int64(c.World.Clock.Now())
	lease := c.cfg.FSConfig.Lock.LeaseDuration
	names, fss := c.fileServers()
	for i, name := range names {
		f := fss[i]
		hi := f.Health()
		h.Register("lease/"+name, func() (obs.ProbeStatus, string) {
			if hi.Poisoned {
				return obs.StatusCrit, "lease lost; server poisoned"
			}
			left := time.Duration(hi.LeaseExpiresAt - now)
			if left <= 0 {
				return obs.StatusCrit, "lease expired"
			}
			if lease > 0 && left < lease/4 {
				return obs.StatusWarn, fmt.Sprintf("lease expires in %v (< 25%% of %v)", left, lease)
			}
			return obs.StatusOK, fmt.Sprintf("lease valid for %v", left)
		})
		h.Register("wal/"+name, func() (obs.ProbeStatus, string) {
			if hi.WALBacklogBytes == 0 {
				return obs.StatusOK, "no unflushed log bytes"
			}
			if hi.WALLastFlush != 0 && time.Duration(now-hi.WALLastFlush) > time.Minute {
				return obs.StatusWarn, fmt.Sprintf("%d B unflushed, last flush %v ago",
					hi.WALBacklogBytes, time.Duration(now-hi.WALLastFlush))
			}
			return obs.StatusOK, fmt.Sprintf("%d B in flight", hi.WALBacklogBytes)
		})
		h.Register("cache/"+name, func() (obs.ProbeStatus, string) {
			worst, detail := obs.StatusOK, "pools healthy"
			check := func(kind string, dirty, capacity int) {
				if capacity == 0 {
					return
				}
				frac := float64(dirty) / float64(capacity)
				st := obs.StatusOK
				if frac >= 0.90 {
					st = obs.StatusCrit
				} else if frac >= 0.75 {
					st = obs.StatusWarn
				}
				if st > worst {
					worst = st
					detail = fmt.Sprintf("%s pool %.0f%% dirty (%d/%d)", kind, frac*100, dirty, capacity)
				}
			}
			check("data", hi.DataDirty, hi.DataCapacity)
			check("meta", hi.MetaDirty, hi.MetaCapacity)
			return worst, detail
		})
	}
	for _, p := range c.Petals {
		p := p
		h.Register("petal/"+p.Name(), func() (obs.ProbeStatus, string) {
			if n := p.MissedBacklog(); n > 0 {
				return obs.StatusWarn, fmt.Sprintf("%d replicated chunks awaiting anti-entropy", n)
			}
			return obs.StatusOK, "replicas in sync"
		})
	}
	rep := h.Evaluate()
	c.journalHealthTransitions(rep)
	return rep
}

// journalHealthTransitions records probe status *changes* into the
// cluster journal (re-evaluating an unchanged crit stays silent) and
// triggers the dump-on-failure artifact the first time any probe
// flips to crit while AutoDumpForensics is armed.
func (c *Cluster) journalHealthTransitions(rep obs.HealthReport) {
	if c.Obs() == nil {
		return
	}
	jr := c.Obs().Journal("cluster")
	c.healthMu.Lock()
	if c.lastProbe == nil {
		c.lastProbe = make(map[string]obs.ProbeStatus)
	}
	newCrit := false
	for _, pr := range rep.Probes {
		prev, seen := c.lastProbe[pr.Name]
		c.lastProbe[pr.Name] = pr.Status
		if pr.Status == prev {
			continue
		}
		switch {
		case pr.Status == obs.StatusCrit:
			jr.Record("obs", "health", "crit", 0, 0, pr.Name+": "+pr.Detail)
			newCrit = true
		case pr.Status == obs.StatusWarn:
			jr.Record("obs", "health", "warn", 0, 0, pr.Name+": "+pr.Detail)
		case seen && prev != obs.StatusOK:
			jr.Record("obs", "health", "recovered", 0, 0, pr.Name)
		}
	}
	path, armed := c.critDumpPath, !c.critDumped
	if newCrit && path != "" && armed {
		c.critDumped = true
	}
	c.healthMu.Unlock()
	if newCrit && path != "" && armed {
		if f, err := os.Create(path); err == nil {
			_, _ = io.WriteString(f, c.Forensics("health probe flipped to crit").JSON())
			_ = f.Close()
		}
	}
}

// AutoDumpForensics arms dump-on-failure: the first time a health
// probe flips to crit, the merged forensics timeline is written to
// path (once per cluster; re-arm by calling again with a new path).
func (c *Cluster) AutoDumpForensics(path string) {
	c.healthMu.Lock()
	c.critDumpPath = path
	c.critDumped = false
	c.healthMu.Unlock()
}

// Timeline merges every server's flight-recorder journal into one
// causally-ordered cross-server timeline (see obs.MergeTimeline).
func (c *Cluster) Timeline(f obs.Filter) []obs.Event {
	return obs.MergeTimeline(c.Obs().Journals(), f)
}

// NowNs is the cluster clock in nanoseconds — the timebase journal
// events are stamped in, so it anchors obs.Filter.Since windows.
func (c *Cluster) NowNs() int64 {
	return int64(c.World.Clock.Now())
}

// EntityNamer renders journal entity keys for humans: lock ids decode
// through the FS lock-name scheme ("inode/7"), anything else in hex.
func (c *Cluster) EntityNamer() obs.Namer {
	return func(layer string, key uint64) string {
		if layer == "lockservice" {
			return fs.LockName(key)
		}
		return fmt.Sprintf("%#x", key)
	}
}

// Anomalies returns the cluster's anomaly watcher (created on first
// use with default thresholds), annotating the cluster journal. Feed
// it windows: c.Anomalies().Observe(c.Windows().Advance()).
func (c *Cluster) Anomalies() *obs.AnomalyWatcher {
	c.anomOnce.Do(func() {
		c.anoms = obs.NewAnomalyWatcher(c.Obs().Journal("cluster"), obs.AnomalyConfig{})
	})
	return c.anoms
}

// Accounts returns the cluster-wide per-principal account table (nil
// when the cluster was built with NoObs or NoAccounting). Bind client
// work with obs.WithPrincipal and every layer attributes its bytes,
// RPCs, lock waits, and cache misses; Snapshot() is the cluster
// "top", Advance() closes a rate window.
func (c *Cluster) Accounts() *obs.AccountTable {
	if c.Obs() == nil {
		return nil
	}
	return c.Obs().Accounts()
}

// Forensics assembles the black-box snapshot: the full merged
// timeline plus the current health report.
func (c *Cluster) Forensics(reason string) obs.ForensicsDump {
	d := obs.ForensicsDump{
		Schema:    obs.ForensicsSchema,
		TakenAtNs: int64(c.World.Clock.Now()),
		Reason:    reason,
		Events:    c.Timeline(obs.Filter{}),
	}
	for _, j := range c.Obs().Journals() {
		d.Servers = append(d.Servers, j.Server())
	}
	if c.Obs() != nil {
		rep := c.Health()
		d.Health = &rep
	}
	return d
}

// DumpForensics writes the forensics snapshot as JSON to w — the
// explicit flavor of dump-on-failure for tests and operators.
func (c *Cluster) DumpForensics(w io.Writer) error {
	_, err := io.WriteString(w, c.Forensics("explicit dump").JSON())
	return err
}

// ServeMetrics starts an HTTP exposition endpoint on addr (":0"
// picks a free port; read it back with the returned server's Addr).
// It serves /metrics (Prometheus text), /snapshot.json, and /health,
// and is shut down by Cluster.Close. Opt-in: nothing listens unless
// this is called. Returns an error when observability is disabled.
func (c *Cluster) ServeMetrics(addr string) (*obs.MetricsServer, error) {
	if c.Obs() == nil {
		return nil, fmt.Errorf("frangipani: cluster built with NoObs; no metrics to serve")
	}
	ms, err := obs.Serve(addr, c.Obs(), c.Health)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.metrics != nil {
		_ = c.metrics.Close()
	}
	c.metrics = ms
	c.mu.Unlock()
	return ms, nil
}

// Fsck runs the offline consistency checker against the shared disk;
// quiesce (Sync) the servers first for a meaningful answer.
func (c *Cluster) Fsck() (*Report, error) {
	return fs.Check(c.Client("fsck"), c.cfg.VDisk, c.lay)
}

// Close tears the whole cluster down.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.metrics != nil {
		_ = c.metrics.Close()
		c.metrics = nil
	}
	servers := make(map[string]*FS, len(c.servers))
	for name, f := range c.servers {
		servers[name] = f
		delete(c.servers, name)
	}
	clients := c.clients
	c.clients = nil
	c.mu.Unlock()
	for _, f := range servers {
		if !f.Poisoned() {
			_ = f.Unmount()
		}
	}
	for _, pc := range clients {
		pc.Close()
	}
	for _, s := range c.Locks {
		s.Close()
	}
	for _, s := range c.Petals {
		s.Close()
	}
	c.World.Stop()
}
