// Failover: crash a Frangipani server that has committed metadata
// only to its private log, and watch another server's recovery demon
// replay that log when the lock service hands it the dead server's
// locks (§4, §7). Then crash a Petal storage server and keep reading
// through its replica.
package main

import (
	"fmt"
	"log"
	"time"

	"frangipani"
)

func main() {
	cfg := frangipani.DefaultClusterConfig()
	cluster, err := frangipani.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// ws1 logs synchronously (records reach Petal) but never writes
	// metadata back to its permanent locations: everything it does
	// lives only in its log.
	fscfg := frangipani.DefaultFSConfig()
	fscfg.SyncLog = true
	fscfg.SyncEvery = time.Hour
	ws1, err := cluster.AddServerWithConfig("ws1", fscfg)
	check(err)
	ws2, err := cluster.AddServer("ws2")
	check(err)

	for i := 0; i < 5; i++ {
		check(ws1.Create(fmt.Sprintf("/doc%d.txt", i)))
	}
	fmt.Println("ws1 created 5 files (in its log only) — crashing it now")
	ws1.Crash()

	// ws2's next operation needs ws1's locks. The lock service waits
	// out ws1's lease, asks ws2's recovery demon to replay ws1's log,
	// and only then releases the locks.
	fmt.Println("ws2 listing / (this blocks until lease expiry + recovery)...")
	start := time.Now()
	for {
		ents, err := ws2.ReadDir("/")
		if err == nil && len(ents) == 5 {
			fmt.Printf("ws2 sees all %d files after %.1fs real (recoveries on ws2: %d)\n",
				len(ents), time.Since(start).Seconds(), ws2.Stats().Recoveries)
			break
		}
		if time.Since(start) > 2*time.Minute {
			log.Fatal("recovery did not complete")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Now a Petal storage server dies; reads continue from replicas.
	h, err := ws2.OpenFile("/doc0.txt", false)
	check(err)
	if _, err := h.WriteAt([]byte("survives storage failure"), 0); err != nil {
		log.Fatal(err)
	}
	check(h.Sync())
	cluster.Petals[1].Crash()
	fmt.Printf("crashed Petal server %s; reading through replicas...\n", cluster.Petals[1].Name())
	buf := make([]byte, 24)
	if _, err := h.ReadAt(buf, 0); err != nil {
		log.Fatalf("read with a dead Petal server: %v", err)
	}
	fmt.Printf("read OK: %q\n", buf)

	// Bring it back; it resynchronizes missed writes before rejoining.
	cluster.Petals[1].Restart()
	fmt.Println("restarted the Petal server; it will resync missed chunks and rejoin")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
