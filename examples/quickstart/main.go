// Quickstart: build a Frangipani cluster in-process, mount two file
// servers on the same shared Petal virtual disk, and watch writes on
// one machine appear coherently on the other — the paper's headline
// property ("all users are given a consistent view of the same set of
// files") plus transparent server addition (§7).
package main

import (
	"fmt"
	"io"
	"log"

	"frangipani"
)

func main() {
	// The cluster: 3 Petal storage servers (each with simulated
	// disks), 3 lock servers, and one shared virtual disk, freshly
	// mkfs'ed.
	cluster, err := frangipani.NewCluster(frangipani.DefaultClusterConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Two interchangeable Frangipani servers on two machines. Adding
	// a server needs only the virtual disk and lock service names.
	ws1, err := cluster.AddServer("ws1")
	if err != nil {
		log.Fatal(err)
	}
	ws2, err := cluster.AddServer("ws2")
	if err != nil {
		log.Fatal(err)
	}

	// ws1 builds a directory tree and writes a file.
	check(ws1.Mkdir("/projects"))
	check(ws1.Mkdir("/projects/frangipani"))
	h, err := ws1.OpenFile("/projects/frangipani/notes.txt", true)
	check(err)
	_, err = h.WriteAt([]byte("layered on Petal; coherence via locks\n"), 0)
	check(err)

	// ws2 sees everything immediately — the lock service revoked
	// ws1's write locks, which flushed the data to Petal.
	ents, err := ws2.ReadDir("/projects")
	check(err)
	fmt.Println("ws2 sees in /projects:")
	for _, e := range ents {
		fmt.Printf("  %-8s %s\n", e.Type, e.Name)
	}
	h2, err := ws2.Open("/projects/frangipani/notes.txt")
	check(err)
	size, err := h2.Size()
	check(err)
	buf := make([]byte, size)
	if _, err := h2.ReadAt(buf, 0); err != nil && err != io.EOF {
		log.Fatal(err)
	}
	fmt.Printf("ws2 reads notes.txt: %s", buf)

	// And back: ws2 appends, ws1 observes.
	_, err = h2.WriteAt([]byte("appended by ws2\n"), size)
	check(err)
	info, err := ws1.Stat("/projects/frangipani/notes.txt")
	check(err)
	fmt.Printf("ws1 stats the file: size=%d nlink=%d\n", info.Size, info.Nlink)

	// A third server joins with zero reconfiguration of the others.
	ws3, err := cluster.AddServer("ws3")
	check(err)
	ents, err = ws3.ReadDir("/projects/frangipani")
	check(err)
	fmt.Printf("freshly added ws3 lists %d entries — no admin work needed\n", len(ents))

	// Everything on disk is consistent.
	for _, f := range []*frangipani.FS{ws1, ws2, ws3} {
		check(f.Sync())
	}
	rep, err := cluster.Fsck()
	check(err)
	fmt.Printf("fsck: %d inodes, %d blocks, problems=%d\n", rep.Inodes, rep.Blocks, len(rep.Problems))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
