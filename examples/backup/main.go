// Backup: take an online, file-system-consistent snapshot of a live
// Frangipani volume using the §8 barrier scheme (all servers quiesce
// via a global lock, then Petal snapshots copy-on-write), restore it
// to a fresh virtual disk, and verify the restored tree — all while
// the original volume keeps changing.
package main

import (
	"fmt"
	"log"

	"frangipani"
)

func main() {
	cluster, err := frangipani.NewCluster(frangipani.DefaultClusterConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ws1, err := cluster.AddServer("ws1")
	check(err)
	ws2, err := cluster.AddServer("ws2")
	check(err)

	// Both servers write concurrently.
	check(ws1.Mkdir("/mail"))
	writeFile(ws1, "/mail/inbox", "42 unread messages")
	check(ws2.Mkdir("/home"))
	writeFile(ws2, "/home/todo", "ship the backup feature")

	// Online backup: the barrier lock forces every server to flush
	// and pause modifications for the instant of the snapshot.
	check(ws1.SnapshotWithBarrier("nightly-backup"))
	fmt.Println("took barrier snapshot 'nightly-backup' while both servers were live")

	// The live volume moves on; the snapshot must not see this.
	writeFile(ws1, "/mail/sent", "post-snapshot mail")
	check(ws1.Remove("/home/todo"))

	// Restore the snapshot onto a new virtual disk. Thanks to the
	// barrier, no log replay is needed — but Restore runs recovery on
	// every log anyway, which also covers crash-consistent snapshots.
	pc := cluster.Client("restorer")
	check(frangipani.Restore(pc, "nightly-backup", "restored-disk", cluster.Layout()))
	rep, err := frangipani.Check(pc, "restored-disk", cluster.Layout())
	check(err)
	fmt.Printf("fsck on restored disk: %d inodes, problems=%d\n", rep.Inodes, len(rep.Problems))

	// Mount the restored volume and inspect: pre-snapshot state only.
	rfs, err := frangipani.Mount(cluster.World, "wsRestore", cluster.Client("wsRestore"),
		"restored-disk", cluster.LockServerNames(), cluster.Layout(), frangipani.DefaultFSConfig())
	check(err)
	defer rfs.Unmount()
	fmt.Println("restored volume contents:")
	for _, dir := range []string{"/mail", "/home"} {
		ents, err := rfs.ReadDir(dir)
		check(err)
		for _, e := range ents {
			fmt.Printf("  %s/%s\n", dir, e.Name)
		}
	}
	if _, err := rfs.Stat("/mail/sent"); err != nil {
		fmt.Println("post-snapshot file /mail/sent correctly absent from the backup")
	}
	if _, err := rfs.Stat("/home/todo"); err == nil {
		fmt.Println("file deleted after the snapshot is still in the backup — time travel works")
	}
}

func writeFile(fs *frangipani.FS, path, content string) {
	h, err := fs.OpenFile(path, true)
	check(err)
	_, err = h.WriteAt([]byte(content), 0)
	check(err)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
