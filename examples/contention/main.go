// Contention: a live rendition of the paper's Figure 8 experiment.
// One server keeps rewriting the start of a shared file while readers
// on other machines stream it; the write lock ping-pongs through the
// lock service. Read-ahead — normally a win — becomes a liability
// under this workload because prefetched pages are invalidated before
// they are delivered, which is exactly the §9.4 anomaly.
package main

import (
	"fmt"
	"log"
	"time"

	"frangipani"
	"frangipani/internal/sim"
	"frangipani/internal/workload"
)

func main() {
	for _, readAhead := range []int{64, 0} {
		mbps, writerOps := run(readAhead)
		mode := "WITH read-ahead"
		if readAhead == 0 {
			mode = "NO read-ahead  "
		}
		fmt.Printf("%s: aggregate reader throughput %.2f MB/s (writer completed %d passes)\n",
			mode, mbps, writerOps)
	}
	fmt.Println()
	fmt.Println("In the paper's Figure 8 the read-ahead curve flattens near 2 MB/s while")
	fmt.Println("the no-read-ahead curve scales; our reproduction implements the same")
	fmt.Println("mechanism (prefetched data is discarded on revocation and the reader")
	fmt.Println("must drain the wasted I/O before re-requesting — see the ReadAheadWasted")
	fmt.Println("counter) but the penalty measures smaller than on the 1997 kernel, so")
	fmt.Println("the two curves sit close together here. See EXPERIMENTS.md, Figure 8.")
}

func run(readAhead int) (float64, int64) {
	cfg := frangipani.DefaultClusterConfig()
	cfg.Compression = 2
	cluster, err := frangipani.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fscfg := frangipani.DefaultFSConfig()
	fscfg.ReadAhead = readAhead
	fscfg.Lock.RevokeRetry = 500 * time.Millisecond

	writer, err := cluster.AddServerWithConfig("writer", fscfg)
	check(err)
	// Seed the shared file.
	h, err := writer.OpenFile("/hot", true)
	check(err)
	payload := make([]byte, 1<<20)
	if _, err := h.WriteAt(payload, 0); err != nil {
		log.Fatal(err)
	}
	check(writer.Sync())

	var readers []workload.FS
	for i := 0; i < 3; i++ {
		r, err := cluster.AddServerWithConfig(fmt.Sprintf("reader%d", i), fscfg)
		check(err)
		readers = append(readers, workload.Frangipani{FS: r})
	}
	res, err := workload.ReaderWriterContention(cluster.World.Clock,
		workload.Frangipani{FS: writer}, readers, "/hot",
		1<<20, 64<<10, 10*sim.Duration(time.Second))
	check(err)
	return res.ReadMBps(), res.WriterOps
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
